// Package repro is the public API of this reproduction of "Minimizing the
// Longest Charge Delay of Multiple Mobile Chargers for Wireless
// Rechargeable Sensor Networks by Charging Multiple Sensors Simultaneously"
// (Xu, Liang, Kan, Xu, Zhang — IEEE ICDCS 2019).
//
// The package exposes, as thin aliases over the internal implementation:
//
//   - the problem vocabulary (Instance, Request, Schedule, Tour, Stop);
//   - the paper's Algorithm Appro (Appro, PlanAppro, NewApproPlanner) and
//     the conflict-aware executor and feasibility verifier (Execute,
//     Verify);
//   - the planner registry (internal/registry) resolving the paper's
//     four baselines and registered extensions by name or alias
//     (NewPlanner, NewPlannerWithOptions, Planners, PlannerNames);
//   - the WRSN world model and workload generator (Network, GenerateNetwork);
//   - the one-year evaluation simulator (Simulate, SimConfig) and the
//     figure harness (RunFigure) that regenerates the paper's Figures 3-5.
//
// Every planning and evaluation entry point takes a context.Context:
// cancelling it (or letting its deadline expire) aborts the computation
// promptly with an error wrapping ctx.Err(), and the simulator and figure
// harness additionally return the partial results accumulated up to that
// point. Attach a Tracer with WithTracer to collect per-stage wall-clock
// timings and counters; with no tracer attached the instrumentation is
// free.
//
// See the examples/ directory for runnable end-to-end programs and
// EXPERIMENTS.md for the paper-versus-measured record.
package repro

import (
	"context"
	"io"

	"repro/internal/capacitated"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/lowerbound"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plancache"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/wrsn"
)

// Problem vocabulary (see internal/core for full documentation).
type (
	// Instance is one longest-charge-delay minimization problem.
	Instance = core.Instance
	// Request is one to-be-charged sensor in V_s.
	Request = core.Request
	// Schedule is a complete K-tour solution.
	Schedule = core.Schedule
	// Tour is one charger's closed tour.
	Tour = core.Tour
	// Stop is one sojourn of a charger.
	Stop = core.Stop
	// Violation is a feasibility defect found by Verify.
	Violation = core.Violation
	// Planner plans charging tours for an instance.
	Planner = core.Planner
	// ApproOptions tunes Algorithm Appro.
	ApproOptions = core.Options
)

// World model and evaluation (see internal/wrsn, internal/sim,
// internal/workload, internal/experiments).
type (
	// Network is a complete wireless rechargeable sensor network.
	Network = wrsn.Network
	// Sensor is one stationary rechargeable sensor.
	Sensor = wrsn.Sensor
	// NetworkParams parameterizes the workload generator.
	NetworkParams = workload.Params
	// SimConfig controls a simulation run.
	SimConfig = sim.Config
	// SimResult aggregates one simulation run.
	SimResult = sim.Result
	// ExperimentOptions configures the figure harness.
	ExperimentOptions = experiments.Options
	// FigureResult is a regenerated evaluation figure.
	FigureResult = experiments.Figure
)

// DispatchMode selects the simulator's dispatch protocol.
type DispatchMode = sim.DispatchMode

// Dispatch protocols for SimConfig.Dispatch.
const (
	// DispatchSynchronized is the paper's round-based protocol (default).
	DispatchSynchronized = sim.DispatchSynchronized
	// DispatchIndependent lets each charger redispatch on its own while
	// staying safe against simultaneous charging.
	DispatchIndependent = sim.DispatchIndependent
)

// Year is the paper's one-year monitoring period T_M, in seconds.
const Year = sim.Year

// DefaultBatchWindow is the dispatch batching window used by the figure
// harness (24 hours).
const DefaultBatchWindow = sim.DefaultBatchWindow

// Observability (see internal/obs). A Tracer attached to the context via
// WithTracer collects per-stage wall-clock timings (charging-graph, mis,
// kminmax, insertion, execute, verify) and named counters from every
// planning and simulation entry point; when no tracer is attached the
// instrumentation is free.
type (
	// Tracer aggregates stage timings and counters for one run.
	Tracer = obs.Tracer
	// TraceReport is a tracer's aggregated, serializable snapshot.
	TraceReport = obs.Report
)

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer { return obs.New() }

// WithTracer returns a context carrying the tracer; pass it to Appro,
// Simulate, RunFigure etc. to collect stage timings.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// TracerFromContext returns the context's tracer, or nil (all Tracer
// methods are nil-safe no-ops).
func TracerFromContext(ctx context.Context) *Tracer { return obs.FromContext(ctx) }

// Appro runs Algorithm 1 of the paper and returns the planned schedule.
// Most callers want PlanAppro, which additionally executes the plan so the
// returned times are conflict-free. The context cancels or deadlines the
// computation; the returned error then wraps ctx.Err().
func Appro(ctx context.Context, in *Instance, opts ApproOptions) (*Schedule, error) {
	return core.Appro(ctx, in, opts)
}

// PlanAppro plans with Algorithm Appro and executes the plan, returning a
// schedule that provably never charges a sensor from two chargers at once.
func PlanAppro(ctx context.Context, in *Instance, opts ApproOptions) (*Schedule, error) {
	return core.ApproPlanner{Opts: opts}.Plan(ctx, in)
}

// Execute simulates the chargers driving a planned schedule, enforcing the
// no-simultaneous-charging constraint by waiting where needed. It always
// runs to completion — a half-executed schedule would be unusable — but
// records its duration on any tracer in ctx.
func Execute(ctx context.Context, in *Instance, planned *Schedule) *Schedule {
	return core.Execute(ctx, in, planned)
}

// Verify independently checks a schedule against the problem definition
// (coverage, disjointness, travel-time consistency, no simultaneous
// charging) and returns all violations found.
func Verify(in *Instance, s *Schedule) []Violation {
	return core.Verify(in, s)
}

// NewApproPlanner returns Algorithm Appro as a Planner.
func NewApproPlanner(opts ApproOptions) Planner {
	return core.ApproPlanner{Opts: opts}
}

// NewPlanner resolves a planner by name through the planner registry
// (internal/registry): the paper's "Appro", "K-EDF", "NETWRAP", "AA" and
// "K-minMax" plus registered extensions such as "BiLevel". Resolution is
// case-insensitive over canonical names and aliases; the empty string
// selects the default planner (Appro). Unknown names return an error
// listing every valid name.
func NewPlanner(name string) (Planner, error) {
	return registry.New(name, nil)
}

// NewPlannerWithOptions resolves a planner by name and constructs it
// under the given plan-shaping options. Planners without tunables (the
// one-to-one baselines) ignore them.
func NewPlannerWithOptions(name string, opts ApproOptions) (Planner, error) {
	return registry.New(name, &opts)
}

// Planners returns every registered algorithm in presentation order: the
// paper's five (Appro first, then the four baselines) followed by this
// reproduction's extensions (BiLevel).
func Planners() []Planner {
	return registry.Planners()
}

// PlannerNames returns the canonical names of every registered planner,
// in the same order as Planners.
func PlannerNames() []string {
	return registry.Names()
}

// Deterministic parallelism and plan caching (see internal/par and
// internal/plancache). Every parallel entry point in this package is
// byte-deterministic: equal inputs produce identical outputs at any worker
// count, because work is identified by index and merged by index, never by
// completion order.

// PlanCache is a bounded LRU memoizing planner outputs by (planner name,
// plan-shaping options, instance). Hits return deep copies of exactly what
// the planner produced cold, so cached and uncached runs are
// byte-identical; planners sharing a name but planning under different
// ApproOptions never serve each other's entries. Safe for concurrent use;
// hit/miss/eviction counters land on any Tracer in the context.
type PlanCache = plancache.Cache

// NewPlanCache returns a plan cache holding at most capacity schedules
// (capacity <= 0 selects the default of 256).
func NewPlanCache(capacity int) *PlanCache { return plancache.New(capacity) }

// CachedPlanner wraps p so repeated plans of an identical instance are
// served from c. The wrapper keeps p's name and folds p's plan-shaping
// options into the cache key when p exposes them (as NewApproPlanner's
// result does); errors are never cached.
func CachedPlanner(p Planner, c *PlanCache) Planner { return plancache.Wrap(p, c) }

// PlanConcurrently plans the same instance under every planner on a bounded
// worker pool and returns one schedule per planner, in input order. workers
// <= 0 means GOMAXPROCS; the output is independent of the worker count. On
// failure it returns the lowest-index planner's error; on cancellation the
// error wraps ctx.Err(). Slots whose planner did not complete are nil.
func PlanConcurrently(ctx context.Context, in *Instance, planners []Planner, workers int) ([]*Schedule, error) {
	return par.Map(ctx, len(planners), workers, func(ctx context.Context, i int) (*Schedule, error) {
		return planners[i].Plan(ctx, in)
	})
}

// NewNetworkParams returns the paper's default environment for n sensors
// (Section VI-A): 100 x 100 m^2 field, 10.8 kJ batteries, 1-50 kbps data
// rates, gamma 2.7 m, speed 1 m/s, eta 2 W.
func NewNetworkParams(n int) NetworkParams { return workload.NewParams(n) }

// GenerateNetwork builds a routed WRSN from the parameters; equal seeds
// produce identical networks.
func GenerateNetwork(p NetworkParams, seed int64) (*Network, error) {
	return workload.Generate(p, seed)
}

// Simulate runs the paper's evaluation protocol on the network with k
// chargers under the given planner. On cancellation it returns both the
// partial result — books closed at the cancellation time — and an error
// wrapping ctx.Err().
func Simulate(ctx context.Context, nw *Network, k int, planner Planner, cfg SimConfig) (*SimResult, error) {
	return sim.Run(ctx, nw, k, planner, cfg)
}

// RunFigure regenerates one of the paper's evaluation figures: id "3"
// sweeps the network size, "4" the maximum data rate, "5" the number of
// chargers. It returns the (a) panel — average longest tour duration in
// hours — and the (b) panel — average dead duration per sensor in minutes.
// On cancellation the panels aggregate the cells that completed and the
// error wraps ctx.Err().
func RunFigure(ctx context.Context, id string, opt ExperimentOptions) (a, b *FigureResult, err error) {
	return experiments.Run(ctx, id, opt)
}

// Fault injection and recovery (see internal/fault and internal/sim).
// Attach a FaultPlan to SimConfig.Faults to subject the simulated fleet to
// seed-deterministic MCV breakdowns, travel/charging delay noise, sensor
// churn and request bursts; the simulator repairs broken chargers' tours
// online and reports degradation through SimResult.Faults.
type (
	// FaultPlan configures deterministic fault injection for a run.
	FaultPlan = fault.Plan
	// ScriptedFailure forces one specific MCV breakdown.
	ScriptedFailure = fault.ScriptedFailure
	// FaultStats aggregates injected faults and recovery outcomes.
	FaultStats = sim.FaultStats
)

// ErrFleetLost is returned (wrapped) by Simulate when every charger has
// permanently broken down; the partial result is still returned with it.
var ErrFleetLost = fault.ErrFleetLost

// ParseFaultSpec builds a FaultPlan from a compact comma-separated spec
// such as "mcv=0.1,transient=0.5,travel-noise=0.05".
func ParseFaultSpec(spec string) (*FaultPlan, error) { return fault.ParseSpec(spec) }

// LoadFaultPlan reads and validates a JSON FaultPlan.
func LoadFaultPlan(r io.Reader) (*FaultPlan, error) { return fault.Load(r) }

// Analysis and bounds (see internal/core and internal/lowerbound).
type (
	// Analysis reports the ingredients of the paper's approximation-ratio
	// proof, computed for a concrete instance.
	Analysis = core.Analysis
	// LowerBound holds provable lower bounds on the optimal longest
	// charge delay.
	LowerBound = lowerbound.Bound
)

// Analyze computes the approximation-ratio ingredients of Theorem 1 — the
// auxiliary graph's maximum degree, tau_max/tau_min, and the resulting
// instance-specific guarantee — without producing a schedule.
func Analyze(ctx context.Context, in *Instance, opts ApproOptions) (*Analysis, error) {
	return core.Analyze(ctx, in, opts)
}

// ComputeLowerBound returns provable lower bounds on the optimal longest
// charge delay; Schedule.Longest / ComputeLowerBound(in).Value bounds a
// schedule's true approximation factor from above.
func ComputeLowerBound(in *Instance) LowerBound {
	return lowerbound.Compute(in)
}

// Capacitated chargers (see internal/capacitated): the paper assumes
// chargers carry enough energy for a whole tour; these types drop that
// assumption.
type (
	// ChargerParams is the charger's energy model.
	ChargerParams = capacitated.Params
	// CapacitatedPlan splits each tour into battery-feasible trips.
	CapacitatedPlan = capacitated.Plan
)

// SplitCapacitated converts a planned schedule into depot-returning trips
// that each fit the charger battery. eta is the charging rate in watts.
func SplitCapacitated(ctx context.Context, in *Instance, s *Schedule, eta float64, p ChargerParams) (*CapacitatedPlan, error) {
	return capacitated.Split(ctx, in, s, eta, p)
}

// LoadNetwork reads a JSON network (as written by cmd/wrsn-gen or
// Network.Save) and recomputes its routing state.
func LoadNetwork(r io.Reader) (*Network, error) { return wrsn.Load(r) }
