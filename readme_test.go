package repro_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/registry"
)

// TestReadmePlannerTable regenerates the planner table from the registry
// and compares it to the block README.md embeds between the
// planner-table markers, so the documented table cannot drift from the
// registered planners. On failure, paste the "want" block into README.
func TestReadmePlannerTable(t *testing.T) {
	const begin, end = "<!-- planner-table:begin -->", "<!-- planner-table:end -->"
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	i := strings.Index(md, begin)
	j := strings.Index(md, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(md[i+len(begin) : j])
	want := strings.TrimSpace(registry.MarkdownTable())
	if got != want {
		t.Errorf("README planner table drifted from the registry.\n--- README has ---\n%s\n--- registry says ---\n%s", got, want)
	}
}
